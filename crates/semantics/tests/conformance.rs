//! Conformance-checker integration tests: the checker must accept what
//! a real `csaw_kv::Table` does under arbitrary interleavings (the §8
//! rule is implemented there), and must reject the recorded trace of
//! the pre-fix `deliver` bug (windows admitting updates raced behind a
//! local write).

use std::sync::Arc;

use csaw_kv::{Table, TableEvent, TableObserver, Update};
use csaw_runtime::{TraceKind, Tracer};
use csaw_semantics::{check_jsonl, ConformanceOptions};

/// Forwards table events into a tracer under a fixed identity, the way
/// the runtime's cell observer does.
struct Fwd {
    tracer: Arc<Tracer>,
}

impl TableObserver for Fwd {
    fn on_event(&self, epoch: u64, event: TableEvent) {
        self.tracer.record("t", "j", epoch, TraceKind::Kv(event));
    }
}

/// Tiny deterministic generator — keeps the interleavings reproducible
/// without pulling a PRNG dependency into the test.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const KEYS: [&str; 3] = ["A", "B", "C"];

/// Drive a raw table through seeded interleavings of local writes,
/// deliveries, window opens/closes, and `keep` across epochs; every
/// resulting trace must replay cleanly under the §8 update rule.
#[test]
fn table_interleavings_conform_to_update_rule() {
    for seed in 0..48u64 {
        let tracer = Arc::new(Tracer::new());
        tracer.set_enabled(true);
        let mut table = Table::new();
        for k in KEYS {
            table.declare_prop(k, false);
        }
        table.set_observer(Arc::new(Fwd { tracer: Arc::clone(&tracer) }));

        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let mut seq = 0u64;
        let deliver = |table: &mut Table, rng: &mut Lcg, seq: &mut u64| {
            *seq += 1;
            let key = KEYS[rng.pick(3) as usize];
            let upd = if rng.pick(2) == 0 {
                Update::assert(key, "g::y")
            } else {
                Update::retract(key, "g::y")
            };
            table.deliver(Update { seq: *seq, ..upd });
        };

        for _ in 0..6 {
            // Some deliveries land between activations (flushed at the
            // next scheduling).
            for _ in 0..rng.pick(3) {
                deliver(&mut table, &mut rng, &mut seq);
            }
            table.begin_activation();
            tracer.record("t", "j", table.epoch(), TraceKind::Sched);
            let mut open: Vec<u64> = Vec::new();
            for _ in 0..(2 + rng.pick(8)) {
                match rng.pick(6) {
                    0 => {
                        let key = KEYS[rng.pick(3) as usize];
                        table.set_prop_local(key, rng.pick(2) == 0).unwrap();
                    }
                    1 | 2 => deliver(&mut table, &mut rng, &mut seq),
                    3 => {
                        let mut keys: Vec<String> = KEYS
                            .iter()
                            .filter(|_| rng.pick(2) == 0)
                            .map(|k| k.to_string())
                            .collect();
                        if keys.is_empty() {
                            keys.push(KEYS[rng.pick(3) as usize].to_string());
                        }
                        open.push(table.open_window(keys));
                    }
                    4 => {
                        if let Some(tok) = open.pop() {
                            table.close_window(tok);
                        }
                    }
                    _ => {
                        let keys = vec![KEYS[rng.pick(3) as usize].to_string()];
                        table.keep(&keys);
                    }
                }
            }
            table.end_activation();
            tracer.record("t", "j", table.epoch(), TraceKind::Unsched { ok: true });
        }

        let jsonl = tracer.drain_jsonl();
        let opts = ConformanceOptions { require_send_for_apply: false };
        let report = check_jsonl(&jsonl, None, &opts).unwrap();
        assert!(
            report.ok(),
            "seed {seed}: {}\ntrace:\n{jsonl}",
            report.describe()
        );
        assert!(report.events > 0);
    }
}

/// The recorded trace of the pre-fix `Table::deliver` bug: a window
/// opened *before* a local write admitted a remote update to the same
/// key, clobbering the §8 local priority. The checker must reject it.
#[test]
fn pre_fix_window_clobber_fixture_is_rejected() {
    let jsonl = include_str!("fixtures/deliver_window_clobber.jsonl");
    let opts = ConformanceOptions { require_send_for_apply: false };
    let report = check_jsonl(jsonl, None, &opts).unwrap();
    assert!(!report.ok(), "fixture must be rejected");
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, "update-rule");
    assert_eq!(report.violations[0].gsn, 4);
}
