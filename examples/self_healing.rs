//! Self-healing supervision, end to end: run the §7.4 supervised
//! fail-over architecture under a key-value workload, partition the
//! preferred back-end away, and let `Runtime::supervise` do the rest —
//! a quorum of heartbeat observers confirms the silence, the repair
//! policy fences the lost primary and live-reconfigures to the
//! `promoted` architecture, and the verify phase holds the repair open
//! until the survivors converge. Afterwards the partition heals and the
//! fenced-out zombie primary tries to ack its stale work: the fence
//! rejects every attempt, so the promoted epoch never sees a
//! split-brain write.
//!
//! Run with: `cargo run --example self_healing`

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csaw::arch::watched::{promoted, supervised_failover, WatchedSpec};
use csaw::core::program::LoadConfig;
use csaw::core::value::Value;
use csaw::redis::apps::ServerApp;
use csaw::redis::{Command, Reply};
use csaw::runtime::app::AppError;
use csaw::runtime::runtime::Policy;
use csaw::runtime::supervisor::RepairAction;
use csaw::runtime::{
    FailureClass, FaultPlan, HeartbeatConfig, HostCtx, InstanceApp, ReconfigSpec, RepairPolicy,
    Runtime, RuntimeConfig, SupervisorConfig,
};

/// KV front-end: `H1` pops the pending command, `save("n")` ships it,
/// `restore("m")` collects the reply.
struct FrontApp {
    requests: Arc<Mutex<VecDeque<Command>>>,
    replies: Arc<Mutex<Vec<Reply>>>,
    current: Option<Command>,
}

impl InstanceApp for FrontApp {
    fn host_call(&mut self, name: &str, _ctx: &mut HostCtx<'_>) -> Result<(), AppError> {
        if name == "H1" {
            self.current = Some(self.requests.lock().unwrap().pop_front().ok_or("no request")?);
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, AppError> {
        Ok(Value::Bytes(self.current.as_ref().ok_or("no current")?.encode()))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), AppError> {
        self.replies
            .lock()
            .unwrap()
            .push(Reply::decode(value.as_bytes().ok_or("bytes")?)?);
        Ok(())
    }
}

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while !f() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

/// Drive one command to a reply, retrying through the repair window.
fn request(
    rt: &Runtime,
    requests: &Arc<Mutex<VecDeque<Command>>>,
    replies: &Arc<Mutex<Vec<Reply>>>,
    cmd: Command,
) -> Option<Reply> {
    let deadline = Instant::now() + Duration::from_secs(8);
    while Instant::now() < deadline {
        {
            let mut q = requests.lock().unwrap();
            if q.is_empty() {
                q.push_back(cmd.clone());
            }
        }
        let before = replies.lock().unwrap().len();
        if rt.invoke("f", "junction").is_ok()
            && wait_until(Duration::from_millis(400), || {
                replies.lock().unwrap().len() > before
            })
        {
            return Some(replies.lock().unwrap()[before].clone());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    None
}

fn main() {
    let spec = WatchedSpec::default();
    let a = csaw::core::compile(supervised_failover(&spec), &LoadConfig::new()).unwrap();
    let b = csaw::core::compile(promoted(&spec), &LoadConfig::new()).unwrap();

    let rt = Runtime::new(&a, RuntimeConfig::default());
    let front = FrontApp {
        requests: Arc::new(Mutex::new(VecDeque::new())),
        replies: Arc::new(Mutex::new(Vec::new())),
        current: None,
    };
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("f", Box::new(front));
    rt.bind_app("o", Box::new(ServerApp::new()));
    rt.bind_app("s", Box::new(ServerApp::new()));
    rt.set_policy("f", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_millis(300))]).unwrap();
    rt.enable_heartbeats(HeartbeatConfig {
        interval: Duration::from_millis(10),
        suspicion: Duration::from_millis(40),
        k_missed: 2,
    });

    // Traffic lands on the preferred back-end `o` (mirrored to the warm
    // spare `s` by the architecture's default arm).
    for cmd in [
        Command::Set("a".into(), b"1".to_vec()),
        Command::Incr("ctr".into()),
        Command::Set("b".into(), b"2".to_vec()),
    ] {
        let reply = request(&rt, &requests, &replies, cmd).expect("pre-partition request");
        println!("pre-partition reply: {reply:?}");
    }

    // The self-healing policy: a confirmed partition of the primary is
    // repaired by fencing it and promoting the spare.
    let target = b.clone();
    let sup = rt.supervise(SupervisorConfig {
        poll: Duration::from_millis(10),
        quorum: 2,
        confirm_polls: 2,
        policy: RepairPolicy::new().on(
            FailureClass::Partition,
            vec![RepairAction::Reconfigure(Arc::new(move |_rt, _inst| {
                (target.clone(), ReconfigSpec::default())
            }))],
        ),
        ..Default::default()
    });

    // Partition `o` from everyone and let the supervisor notice.
    println!("\npartitioning the preferred back-end o ...");
    let injected = Instant::now();
    for (from, to) in [("o", "f"), ("f", "o"), ("o", "s"), ("s", "o")] {
        rt.set_fault_plan(from, to, FaultPlan::none().with_drop(1.0));
    }
    assert!(
        wait_until(Duration::from_secs(10), || {
            sup.records().iter().any(|r| r.instance == "o" && r.ok)
        }),
        "supervisor never repaired the partitioned primary"
    );
    let record = sup.records().into_iter().find(|r| r.instance == "o").unwrap();
    println!(
        "repaired: class={} action={} fence_epoch={:?}",
        record.class.label(),
        record.action,
        record.fence_epoch
    );
    println!(
        "MTTR from injection: {:?} (detector latency {:?}, act+verify {:?})",
        record.done_at.saturating_duration_since(injected),
        record.detect_latency,
        record.repair_latency
    );

    // The promoted spare serves — including state mirrored pre-partition.
    let reply = request(&rt, &requests, &replies, Command::Get("ctr".into()))
        .expect("post-promotion request");
    assert_eq!(reply, Reply::Bulk(b"1".to_vec()));
    println!("post-promotion GET ctr -> {reply:?} (served by the promoted spare)");

    // Heal the partition and poke the zombie into replaying its last
    // ack. The fence (supervisor epoch in every send's route-generation
    // bits) rejects it — no split-brain write reaches the new epoch.
    for (from, to) in [("o", "f"), ("f", "o"), ("o", "s"), ("s", "o")] {
        rt.set_fault_plan(from, to, FaultPlan::none());
    }
    rt.deliver_for_test("o", "junction", csaw::kv::Update::assert("Run[o]", "demo"));
    let stale_landed = wait_until(Duration::from_millis(300), || {
        rt.peek_prop("f", "junction", "Reply") == Some(true)
    });
    assert!(!stale_landed, "fence must reject the zombie's stale ack");
    println!(
        "\nzombie poked after heal: stale ack fenced out ({} sends rejected), \
         front state clean",
        rt.link_stats().fenced
    );

    sup.stop();
    rt.shutdown();
    println!("done: detect -> plan -> reconfigure -> verify, split-brain prevented");
}
