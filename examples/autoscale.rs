//! Declarative reconfiguration planning + metrics-driven autoscaling.
//!
//! Part one shows the planner as a pure function: declare a target
//! architecture (2 shards → 4 shards) plus constraints (at most one
//! instance quiesced per phase) and get back an ordered,
//! minimal-disruption sequence of phased diffs — adds before changes
//! before removals — which the plan-validity checker then judges
//! against its proof obligations.
//!
//! Part two closes the loop: an autoscaler thread samples the
//! `offered_rate` / `read_fraction` gauges, and when the per-shard rate
//! crosses a watermark it plans, validates, and executes the matching
//! transition live — a split when load rises, a merge back when it
//! falls — while a client's writes keep landing. Every acknowledged
//! write is still readable afterwards.
//!
//! Run with: `cargo run --example autoscale`

use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw::arch::sharding::{sharding, ShardingSpec};
use csaw::core::expr::Arg;
use csaw::core::names::JRef;
use csaw::core::plan::{plan_reconfiguration, Plan, PlanConstraints, PlanPhase};
use csaw::core::program::{CompiledProgram, LoadConfig};
use csaw::core::value::Value;
use csaw::redis::apps::{ServerApp, ShardFrontApp, ShardMode};
use csaw::redis::hash::shard_of;
use csaw::redis::{Command, Reply, Store};
use csaw::runtime::runtime::Policy;
use csaw::runtime::{
    AutoscaleConfig, AutoscaleDriver, AutoscaleGoal, ReconfigSpec, Runtime, RuntimeConfig,
};
use parking_lot::Mutex;

const T: Duration = Duration::from_millis(400);

/// How a goal becomes a program, and how each plan phase gets its
/// apps/starts/migration. The validator injects the semantics-level
/// plan checker — the runtime crate never depends on it.
struct Scaler {
    requests: Arc<Mutex<std::collections::VecDeque<Command>>>,
    replies: Arc<Mutex<std::collections::VecDeque<Reply>>>,
    stores: Vec<Arc<Mutex<Store>>>,
    constraints: PlanConstraints,
}

impl AutoscaleDriver for Scaler {
    fn program(&self, goal: &AutoscaleGoal) -> Result<CompiledProgram, String> {
        let spec = ShardingSpec { n_backends: goal.shards, ..Default::default() };
        csaw::core::compile(sharding(&spec), &LoadConfig::new()).map_err(|e| e.to_string())
    }

    fn phase_spec(&self, goal: &AutoscaleGoal, phase: &PlanPhase) -> ReconfigSpec {
        let mut rs = ReconfigSpec::default();
        for added in &phase.diff.added {
            let i: usize = added.strip_prefix("Bck").unwrap().parse().unwrap();
            rs.apps.push((
                added.clone(),
                Box::new(ServerApp::with_store(Arc::clone(&self.stores[i - 1]))),
            ));
            rs.start.push((
                added.clone(),
                vec![(
                    None,
                    vec![
                        Arg::Junction(JRef::qualified("Fnt", "junction")),
                        Arg::Value(Value::Duration(T)),
                    ],
                )],
            ));
        }
        if phase.diff.changed.iter().any(|c| c.name == "Fnt") {
            let mut front = ShardFrontApp::new(ShardMode::ByKey, goal.shards);
            front.requests = Arc::clone(&self.requests);
            front.replies = Arc::clone(&self.replies);
            rs.apps.push(("Fnt".to_string(), Box::new(front)));
            // Re-home every key while the front is held in this phase.
            let mig = self.stores.clone();
            let to_n = goal.shards;
            rs.migrate = Some(Box::new(move |ctx| {
                let mut moved = 0u64;
                for idx in 0..mig.len() {
                    // Bind before iterating: holding a store's guard
                    // across the loop would self-deadlock when a key
                    // re-homes to the shard it came from.
                    let entries = mig[idx].lock().drain_entries();
                    for (k, v) in entries {
                        moved += 1;
                        mig[shard_of(&k, to_n)].lock().set(&k, v);
                    }
                }
                ctx.note_moved(moved, 0);
                Ok(())
            }));
        }
        rs
    }

    fn validate(
        &self,
        from: &CompiledProgram,
        to: &CompiledProgram,
        plan: &Plan,
    ) -> Result<(), String> {
        let verdict = csaw::semantics::check_plan(from, to, plan, &self.constraints);
        if verdict.is_valid() { Ok(()) } else { Err(verdict.to_string()) }
    }
}

fn request(scaler: &Scaler, rt: &Runtime, cmd: Command) -> Option<Reply> {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        {
            let mut q = scaler.requests.lock();
            if q.is_empty() {
                q.push_back(cmd.clone());
            }
        }
        let before = scaler.replies.lock().len();
        if rt.invoke("Fnt", "junction").is_ok() {
            let reply_deadline = Instant::now() + T;
            while Instant::now() < reply_deadline {
                if scaler.replies.lock().len() > before {
                    return scaler.replies.lock().pop_back();
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    None
}

fn main() {
    let constraints = PlanConstraints::max_quiesce(1);

    // ----- Part one: the planner as a pure, checkable function -------
    let two = csaw::core::compile(
        sharding(&ShardingSpec { n_backends: 2, ..Default::default() }),
        &LoadConfig::new(),
    )
    .unwrap();
    let four = csaw::core::compile(
        sharding(&ShardingSpec { n_backends: 4, ..Default::default() }),
        &LoadConfig::new(),
    )
    .unwrap();
    let plan = plan_reconfiguration(&two, &four, &constraints).unwrap();
    println!("plan 2 → 4 shards under max_concurrent_quiesce=1:");
    for phase in &plan.phases {
        println!(
            "  phase {}: +{:?} ~{:?} -{:?} (quiesces {:?})",
            phase.index,
            phase.diff.added,
            phase.diff.changed.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            phase.diff.removed,
            phase.diff.quiesce_set(),
        );
    }
    let verdict = csaw::semantics::check_plan(&two, &four, &plan, &constraints);
    println!("checker: {verdict}");
    assert!(verdict.is_valid());

    // ----- Part two: the closed loop under live traffic --------------
    let rt = Runtime::new(&two, RuntimeConfig::default());
    let front = ShardFrontApp::new(ShardMode::ByKey, 2);
    let scaler_driver = Arc::new(Scaler {
        requests: Arc::clone(&front.requests),
        replies: Arc::clone(&front.replies),
        stores: (0..4).map(|_| Arc::new(Mutex::new(Store::new()))).collect(),
        constraints: constraints.clone(),
    });
    rt.bind_app("Fnt", Box::new(front));
    for i in 1..=2usize {
        rt.bind_app(
            &format!("Bck{i}"),
            Box::new(ServerApp::with_store(Arc::clone(&scaler_driver.stores[i - 1]))),
        );
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(T)]).unwrap();

    let metrics = rt.metrics();
    metrics.gauge("offered_rate").set(100.0); // 50 r/s/shard: in-band
    metrics.gauge("read_fraction").set(0.3);
    let scaler = rt.autoscale(
        AutoscaleConfig {
            poll: Duration::from_millis(20),
            split_above: 100.0,
            merge_below: 30.0,
            cooldown: Duration::from_millis(100),
            min_shards: 2,
            max_shards: 4,
            constraints,
            ..Default::default()
        },
        AutoscaleGoal { shards: 2, cache: false },
        Arc::clone(&scaler_driver) as Arc<dyn AutoscaleDriver>,
    );

    for i in 0..30 {
        request(&scaler_driver, &rt, Command::Set(format!("k{i}"), format!("v{i}").into_bytes()))
            .expect("SET acknowledged");
    }
    println!("\nserving at 2 shards; raising offered_rate past the split watermark…");
    metrics.gauge("offered_rate").set(300.0); // 150 r/s/shard: split
    let deadline = Instant::now() + Duration::from_secs(10);
    while scaler.goal() != Some(AutoscaleGoal { shards: 4, cache: false }) {
        assert!(Instant::now() < deadline, "split never fired");
        std::thread::sleep(Duration::from_millis(5));
    }
    let rec = &scaler.records()[0];
    println!(
        "autoscaler fired: {} in {} phases, worst per-phase quiesce {}",
        rec.kind(),
        rec.phases,
        rec.max_phase_quiesce
    );

    println!("dropping offered_rate below the merge watermark…");
    metrics.gauge("offered_rate").set(80.0); // 20 r/s/shard: merge
    let deadline = Instant::now() + Duration::from_secs(10);
    while scaler.goal() != Some(AutoscaleGoal { shards: 2, cache: false }) {
        assert!(Instant::now() < deadline, "merge never fired");
        std::thread::sleep(Duration::from_millis(5));
    }
    let rec = &scaler.records()[1];
    println!(
        "autoscaler fired: {} in {} phases, worst per-phase quiesce {}",
        rec.kind(),
        rec.phases,
        rec.max_phase_quiesce
    );

    for i in 0..30 {
        let reply = request(&scaler_driver, &rt, Command::Get(format!("k{i}")))
            .expect("GET acknowledged");
        assert_eq!(reply, Reply::Bulk(format!("v{i}").into_bytes()));
    }
    println!(
        "every acknowledged write survived split + merge; shard sizes {:?}",
        scaler_driver.stores.iter().map(|s| s.lock().len()).collect::<Vec<_>>()
    );
    scaler.stop();
    rt.shutdown();
}
