//! Packet steering (§2, the Suricata flow-level-resourcing scenario):
//! the *same* sharding architecture that splits Redis keys steers
//! packets to four detection engines by 5-tuple hash — with a reserved
//! engine for traffic of interest. This is the paper's reusability
//! claim: only the host hooks change between applications.
//!
//! Run with: `cargo run --example packet_steering`

use std::sync::Arc;
use std::time::Duration;

use csaw::arch::sharding::{sharding, ShardingSpec};
use csaw::core::program::LoadConfig;
use csaw::core::value::Value;
use csaw::runtime::runtime::Policy;
use csaw::runtime::{Runtime, RuntimeConfig};
use csaw::suricata::apps::{EngineApp, SteeringApp};
use csaw::suricata::{CaptureSpec, SyntheticCapture};

fn main() {
    // The identical DSL program used for Redis sharding.
    let spec = ShardingSpec::default();
    let compiled = csaw::core::compile(sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&compiled, RuntimeConfig::default());

    let mut steer = SteeringApp::new(4);
    // Flow-level resourcing: reserve engine 1 for DNS traffic.
    steer.reserve = Some(Box::new(|p| p.dst_port == 53));
    let packets = Arc::clone(&steer.packets);
    rt.bind_app("Fnt", Box::new(steer));
    let mut engines = Vec::new();
    for i in 1..=4 {
        let app = EngineApp::new();
        engines.push(Arc::clone(&app.engine));
        rt.bind_app(&format!("Bck{i}"), Box::new(app));
    }
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(2))]).unwrap();

    // Replay a slice of the synthetic bigFlows-analog capture.
    let cap = SyntheticCapture::generate(&CaptureSpec {
        flows: 150,
        packets: 3000,
        attack_fraction: 0.01,
        ..Default::default()
    });
    let mut dns = 0usize;
    for pkt in &cap.packets {
        if pkt.dst_port == 53 {
            dns += 1;
        }
        packets.lock().push_back(pkt.clone());
        rt.invoke("Fnt", "junction").unwrap();
    }

    println!("steered {} packets from {} flows:", cap.packets.len(), cap.flow_count);
    for (i, engine) in engines.iter().enumerate() {
        let e = engine.lock();
        println!(
            "  engine {}: {:>5} packets, {:>3} flows, {} alerts{}",
            i + 1,
            e.packets_seen,
            e.flow_count(),
            e.alerts_raised,
            if i == 0 { "  <- reserved for DNS" } else { "" }
        );
    }
    assert_eq!(engines[0].lock().packets_seen as usize, dns);
    rt.shutdown();
}
