//! Quickstart: the paper's Fig. 3 example — the sequential program
//! `H1;H2` typified into two instances, `f` and `g`, whose junctions
//! coordinate through the `Work` proposition in their distributed
//! key-value tables.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csaw::core::builder::fig3_program;
use csaw::core::pretty::print_program;
use csaw::core::program::LoadConfig;
use csaw::core::value::Value;
use csaw::runtime::{HostCtx, InstanceApp, Runtime, RuntimeConfig};
use csaw::semantics::{denote_program, topology, DenoteConfig};

/// A tiny app: H1 produces a greeting, H2 consumes it.
struct HalfProgram {
    name: &'static str,
    message: Arc<Mutex<Option<String>>>,
}

impl InstanceApp for HalfProgram {
    fn host_call(&mut self, hook: &str, _ctx: &mut HostCtx<'_>) -> Result<(), String> {
        match hook {
            "H1" => {
                println!("[{}] H1: producing the message", self.name);
                *self.message.lock().unwrap() = Some("hello from H1".to_string());
            }
            "H2" => {
                let msg = self.message.lock().unwrap().clone().unwrap_or_default();
                println!("[{}] H2: received {msg:?}", self.name);
            }
            _ => {}
        }
        Ok(())
    }
    fn save(&mut self, _key: &str) -> Result<Value, String> {
        // `save(…, n)`: serialize the message into the junction table.
        let msg = self.message.lock().unwrap().clone().ok_or("nothing to save")?;
        Ok(Value::Str(msg))
    }
    fn restore(&mut self, _key: &str, value: &Value) -> Result<(), String> {
        // `restore(n, …)`: the datum arrives at g through `write(n, g)`.
        if let Value::Str(s) = value {
            *self.message.lock().unwrap() = Some(s.clone());
        }
        Ok(())
    }
}

fn main() {
    let program = fig3_program();

    println!("=== The architecture, in (ASCII) paper syntax ===");
    println!("{}", print_program(&program));

    println!("=== Its communication topology (§8.7) ===");
    let compiled = csaw::core::compile(program, &LoadConfig::new()).unwrap();
    print!("{}", topology(&compiled).to_dot());

    println!("\n=== Its event-structure semantics (§8, cf. Fig. 18) ===");
    let sem = denote_program(&compiled, &DenoteConfig::default());
    let f_events = sem.junctions["f::junction"].len();
    let g_events = sem.junctions["g::junction"].len();
    println!("f::junction: {f_events} events; g::junction: {g_events} events");

    println!("\n=== Running it ===");
    let rt = Runtime::new(&compiled, RuntimeConfig::default());
    let shared = Arc::new(Mutex::new(None));
    rt.bind_app("f", Box::new(HalfProgram { name: "f", message: Arc::clone(&shared) }));
    // g has its own copy of the state; the DSL carries it across.
    rt.bind_app("g", Box::new(HalfProgram { name: "g", message: Arc::new(Mutex::new(None)) }));
    rt.run_main(vec![]).unwrap();

    // f runs H1 at startup, hands off through `write`/`assert Work`;
    // g's guard fires, it restores the datum and runs H2, then retracts
    // Work back at f. Wait for the handshake to complete.
    let deadline = Instant::now() + Duration::from_secs(5);
    while rt.peek_prop("f", "junction", "Work") != Some(false)
        || rt.activations("g") == 0
    {
        assert!(Instant::now() < deadline, "coordination did not complete");
        std::thread::sleep(Duration::from_millis(5));
    }
    println!(
        "done: f ran {} activation(s), g ran {} activation(s), Work retracted",
        rt.activations("f"),
        rt.activations("g")
    );
    rt.shutdown();
}
