//! Live resharding: take a running single-back-end key-value store to
//! three shards **without stopping it**. A client keeps issuing SETs and
//! GETs throughout; the reconfiguration engine diffs the two compiled
//! programs, quiesces only the front-end (the surviving back-end never
//! pauses), carries the junction tables across the cut, re-homes every
//! stored key by the new shard formula while the front is held, starts
//! the joining shards, and resumes. Every acknowledged write is still
//! readable afterwards.
//!
//! Run with: `cargo run --example live_reshard`

use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw::arch::sharding::{sharding, ShardingSpec};
use csaw::core::expr::Arg;
use csaw::core::names::JRef;
use csaw::core::program::LoadConfig;
use csaw::core::value::Value;
use csaw::redis::apps::{ServerApp, ShardFrontApp, ShardMode};
use csaw::redis::hash::shard_of;
use csaw::redis::{Command, Reply, Store};
use csaw::runtime::runtime::Policy;
use csaw::runtime::{ReconfigSpec, Runtime, RuntimeConfig};
use parking_lot::Mutex;

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while !f() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    true
}

/// Issue one command and wait for its reply; retries cover the hold
/// window while the front-end is quiesced mid-reconfiguration.
fn request(
    rt: &Runtime,
    requests: &Arc<Mutex<std::collections::VecDeque<Command>>>,
    replies: &Arc<Mutex<std::collections::VecDeque<Reply>>>,
    cmd: Command,
) -> Option<Reply> {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        {
            let mut q = requests.lock();
            if q.is_empty() {
                q.push_back(cmd.clone());
            }
        }
        let before = replies.lock().len();
        if rt.invoke("Fnt", "junction").is_ok()
            && wait_until(Duration::from_millis(400), || replies.lock().len() > before)
        {
            return replies.lock().pop_back();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    None
}

fn main() {
    let t = Duration::from_millis(400);

    // Epoch A: one front-end, ONE back-end.
    let prog_a = sharding(&ShardingSpec { n_backends: 1, ..Default::default() });
    let a = csaw::core::compile(prog_a, &LoadConfig::new()).unwrap();
    // Epoch B: the same architecture at THREE back-ends.
    let prog_b = sharding(&ShardingSpec { n_backends: 3, ..Default::default() });
    let b = csaw::core::compile(prog_b, &LoadConfig::new()).unwrap();

    let rt = Runtime::new(&a, RuntimeConfig::default());
    let front = ShardFrontApp::new(ShardMode::ByKey, 1);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    let bck1 = ServerApp::new();
    let mut stores = vec![Arc::clone(&bck1.store)];
    rt.bind_app("Bck1", Box::new(bck1));
    // The joining shards' stores exist up front so the migrate closure
    // and the post-check share the handles.
    stores.push(Arc::new(Mutex::new(Store::new())));
    stores.push(Arc::new(Mutex::new(Store::new())));
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(t)]).unwrap();

    // Warm traffic into epoch A.
    for i in 0..40 {
        request(&rt, &requests, &replies, Command::Set(format!("k{i}"), format!("v{i}").into_bytes()))
            .expect("pre-reshard SET acknowledged");
    }
    println!("epoch A serving: {} keys on 1 shard", stores[0].lock().len());

    // The spec: a front app routing mod 3 over the same live queues, two
    // joining back-ends, their start activations, and the re-keying.
    let mut new_front = ShardFrontApp::new(ShardMode::ByKey, 3);
    new_front.requests = Arc::clone(&requests);
    new_front.replies = Arc::clone(&replies);
    let mut spec = ReconfigSpec::default();
    spec.apps.push(("Fnt".to_string(), Box::new(new_front)));
    for i in 2..=3usize {
        spec.apps.push((
            format!("Bck{i}"),
            Box::new(ServerApp::with_store(Arc::clone(&stores[i - 1]))),
        ));
        spec.start.push((
            format!("Bck{i}"),
            vec![(
                None,
                vec![
                    Arg::Junction(JRef::qualified("Fnt", "junction")),
                    Arg::Value(Value::Duration(t)),
                ],
            )],
        ));
    }
    let mig = stores.clone();
    spec.migrate = Some(Box::new(move |ctx| {
        let mut moved = 0u64;
        let mut bytes = 0u64;
        let drained: Vec<(String, Vec<u8>)> = mig[0].lock().drain_entries();
        for (key, val) in drained {
            let home = shard_of(&key, 3);
            if home != 0 {
                moved += 1;
                bytes += (key.len() + val.len()) as u64;
            }
            mig[home].lock().set(&key, val);
        }
        ctx.note_moved(moved, bytes);
        Ok(())
    }));

    let report = rt.reconfigure(&b, spec).unwrap();
    assert!(
        report.migration_error.is_none(),
        "cut applied but migration failed: {:?}",
        report.migration_error
    );
    println!(
        "resharded 1 → 3 in {:?}: {} added / {} changed, {} entries re-homed, \
         worst pause {:?}",
        report.total,
        report.plan.added.len(),
        report.plan.changed.len(),
        report.moved_entries,
        report.max_pause(),
    );

    // Epoch B serves the old keys from their new homes — and new ones.
    for i in 0..40 {
        let reply = request(&rt, &requests, &replies, Command::Get(format!("k{i}")))
            .expect("post-reshard GET acknowledged");
        assert_eq!(reply, Reply::Bulk(format!("v{i}").into_bytes()), "k{i} readable after reshard");
    }
    for i in 40..60 {
        request(&rt, &requests, &replies, Command::Set(format!("k{i}"), format!("v{i}").into_bytes()))
            .expect("post-reshard SET acknowledged");
    }
    println!(
        "epoch B serving: shard sizes {:?} — every acknowledged write survived",
        stores.iter().map(|s| s.lock().len()).collect::<Vec<_>>()
    );
    rt.shutdown();
}
