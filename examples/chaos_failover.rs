//! Chaos fail-over (§7.3 under the fault model): the same front-end /
//! warm-back-end architecture as `failover_kv`, but the links misbehave —
//! seeded probabilistic drop and duplication, delivery jitter, and a
//! scheduled directional partition cutting `f → b1` mid-run. The
//! reliability layer (bounded retry with backoff, receiver-side dedup)
//! masks the loss; the partition outlasts the retry budget, so the
//! architecture demotes `b1` and re-registers it once the link heals.
//!
//! Run with: `cargo run --example chaos_failover`

use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw::arch::failover::{self, failover, FailoverSpec};
use csaw::core::program::LoadConfig;
use csaw::core::value::Value;
use csaw::kv::Update;
use csaw::redis::apps::{FailoverFrontApp, ServerApp};
use csaw::redis::Command;
use csaw::runtime::{FaultPlan, Runtime, RuntimeConfig};

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while !f() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

fn main() {
    let spec = FailoverSpec::default(); // front-end `f`, back-ends b1, b2
    let compiled = csaw::core::compile(failover(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&compiled, RuntimeConfig::default());

    let front = FailoverFrontApp::new();
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("f", Box::new(front));
    let mut stores = Vec::new();
    for name in ["b1", "b2"] {
        let app = ServerApp::new();
        stores.push(Arc::clone(&app.store));
        rt.bind_app(name, Box::new(app));
    }
    let t = Duration::from_millis(400);
    failover::configure_policies(&rt, &spec, t);
    rt.run_main(vec![Value::Duration(t)]).unwrap();
    wait_until(Duration::from_secs(5), || {
        rt.peek_prop("f", "c", "Starting") == Some(false)
    });
    println!("booted: Backend[b1::serve] and Backend[b2::serve] registered at f::c");

    // Chaos goes in after boot. Every direction of the request path gets
    // 5% drop + 5% dup + 1ms jitter; additionally f → b1 is cut for 1.5s
    // starting 300ms from now. Seeded, so this run replays bit-for-bit.
    for (i, (from, to)) in [("f", "b1"), ("b1", "f"), ("f", "b2"), ("b2", "f")]
        .into_iter()
        .enumerate()
    {
        let mut plan = FaultPlan::none()
            .with_drop(0.05)
            .with_dup(0.05)
            .with_jitter(Duration::from_millis(1))
            .with_seed(42 + i as u64);
        if (from, to) == ("f", "b1") {
            plan = plan.with_outage(Duration::from_millis(300), Duration::from_millis(1800));
        }
        rt.set_fault_plan(from, to, plan);
    }
    println!("chaos installed: 5% drop, 5% dup, 1ms jitter; f→b1 partition at +300ms for 1.5s");

    let sent = std::cell::Cell::new(0usize);
    let lost = std::cell::Cell::new(0usize);
    let request = |cmd: Command| {
        requests.lock().push_back(cmd);
        rt.deliver_for_test("f", "c", Update::assert("Req", "client"));
        sent.set(sent.get() + 1);
        let expect = sent.get() - lost.get();
        if !wait_until(Duration::from_secs(5), || replies.lock().len() >= expect) {
            lost.set(lost.get() + 1);
            requests.lock().clear();
        }
    };

    for i in 0..60 {
        request(Command::Set(format!("k{}", i % 4), format!("v{i}").into_bytes()));
        std::thread::sleep(Duration::from_millis(25));
    }
    println!(
        "drove {} requests through the chaos: answered = {}, lost = {}",
        sent.get(),
        replies.lock().len(),
        lost.get()
    );

    // The partition has healed; b1's periodic startup junction
    // re-registers it, and one more write-to-all resynchronizes.
    wait_until(Duration::from_secs(10), || {
        rt.peek_prop("f", "c", "Backend[b1::serve]") == Some(true)
            && rt.peek_prop("f", "c", "Backend[b2::serve]") == Some(true)
    });
    request(Command::Set("k0".into(), b"fence".to_vec()));
    let agree = ["k0", "k1", "k2", "k3"]
        .iter()
        .all(|k| stores[0].lock().get(k) == stores[1].lock().get(k));
    println!("partition healed: b1 re-registered, replicas agree = {agree}");

    let stats = rt.link_stats();
    println!(
        "link stats: {} sends, {} dropped, {} duplicated, {} deduped, {} retries, {} hit the partition",
        stats.msgs_sent, stats.drops, stats.dups, stats.deduped, stats.retries, stats.partitioned
    );
    rt.shutdown();
}
