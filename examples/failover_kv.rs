//! Fail-over (§7.3, the Redis availability scenario): a front-end
//! replicates each request to two warm back-end stores; killing one
//! mid-run demotes it and the system keeps answering; restarting it
//! re-registers and resynchronizes it from the canonical state.
//!
//! Run with: `cargo run --example failover_kv`

use std::sync::Arc;
use std::time::{Duration, Instant};

use csaw::arch::failover::{self, failover, FailoverSpec};
use csaw::core::program::LoadConfig;
use csaw::core::value::Value;
use csaw::kv::Update;
use csaw::redis::apps::{FailoverFrontApp, ServerApp};
use csaw::redis::Command;
use csaw::runtime::{Runtime, RuntimeConfig};

fn wait_until(timeout: Duration, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !f() {
        assert!(Instant::now() < deadline, "timed out");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn main() {
    let spec = FailoverSpec::default(); // front-end `f`, back-ends b1, b2
    let compiled = csaw::core::compile(failover(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&compiled, RuntimeConfig::default());

    let front = FailoverFrontApp::new();
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("f", Box::new(front));
    let mut stores = Vec::new();
    for name in ["b1", "b2"] {
        let app = ServerApp::new();
        stores.push(Arc::clone(&app.store));
        rt.bind_app(name, Box::new(app));
    }
    let t = Duration::from_millis(400);
    failover::configure_policies(&rt, &spec, t);
    rt.run_main(vec![Value::Duration(t)]).unwrap();

    // Wait for the Starting phase (back-end registration, Fig. 8 ①②).
    wait_until(Duration::from_secs(5), || {
        rt.peek_prop("f", "c", "Starting") == Some(false)
    });
    println!("registered: Backend[b1::serve] and Backend[b2::serve] at f::c");

    let mut sent = 0usize;
    let mut request = |cmd: Command| {
        requests.lock().push_back(cmd);
        rt.deliver_for_test("f", "c", Update::assert("Req", "client"));
        sent += 1;
        let expect = sent;
        wait_until(Duration::from_secs(10), || replies.lock().len() >= expect);
    };

    request(Command::Set("account:1".into(), b"100".to_vec()));
    println!(
        "after SET: b1 has key = {}, b2 has key = {} (warm replication)",
        stores[0].lock().exists("account:1"),
        stores[1].lock().exists("account:1")
    );

    println!("crashing b1…");
    rt.crash("b1");
    request(Command::Incr("account:1".into()));
    println!(
        "system survived: reply = {:?}, Backend[b1::serve] demoted = {}",
        replies.lock().back(),
        rt.peek_prop("f", "c", "Backend[b1::serve]") == Some(false)
    );

    println!("restarting b1…");
    rt.restart("b1").unwrap();
    wait_until(Duration::from_secs(10), || {
        rt.peek_prop("f", "c", "Backend[b1::serve]") == Some(true)
    });
    request(Command::Get("account:1".into()));
    println!(
        "b1 resynchronized: value on b1 = {:?}",
        stores[0].lock().get("account:1").map(|v| String::from_utf8_lossy(v).into_owned())
    );
    rt.shutdown();
}
