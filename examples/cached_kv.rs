//! Caching (§7.2 / Fig. 7, the Redis performance scenario): a memoizing
//! cache instance fronts a store instance; repeated hot reads are served
//! without touching the back-end, writes invalidate.
//!
//! Run with: `cargo run --example cached_kv`

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use csaw::arch::caching::{caching, CachingSpec};
use csaw::core::program::LoadConfig;
use csaw::core::value::Value;
use csaw::redis::apps::{CacheApp, ServerApp};
use csaw::redis::Command;
use csaw::runtime::runtime::Policy;
use csaw::runtime::{Runtime, RuntimeConfig};

fn main() {
    let spec = CachingSpec::default(); // Cache + Fun instances
    let compiled = csaw::core::compile(caching(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&compiled, RuntimeConfig::default());

    let cache = CacheApp::new(1024);
    let requests = Arc::clone(&cache.requests);
    let hits = Arc::clone(&cache.hits);
    let misses = Arc::clone(&cache.misses);
    rt.bind_app("Cache", Box::new(cache));
    let fun = ServerApp::new();
    let backend_calls = Arc::clone(&fun.handled);
    let store = Arc::clone(&fun.store);
    rt.bind_app("Fun", Box::new(fun));
    rt.set_policy("Cache", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(2))]).unwrap();

    store.lock().set("config", b"v1".to_vec());

    let send = |cmd: Command| {
        requests.lock().push_back(cmd);
        rt.invoke("Cache", "junction").unwrap();
    };

    // 5 hot reads: first misses, rest hit.
    for _ in 0..5 {
        send(Command::Get("config".into()));
    }
    // A write invalidates; the next read misses again.
    send(Command::Set("config".into(), b"v2".to_vec()));
    send(Command::Get("config".into()));

    println!(
        "hits = {}, misses = {}, back-end executions = {}",
        hits.load(Ordering::Relaxed),
        misses.load(Ordering::Relaxed),
        backend_calls.load(Ordering::Relaxed),
    );
    assert_eq!(hits.load(Ordering::Relaxed), 4);
    rt.shutdown();
}
