//! Remote auditing (§2 use-cases ②/③, the cURL BYOD scenario): a
//! download client's state is captured at the end of each invocation and
//! logged to a remote auditor whose records survive independently —
//! here across a real TCP loopback channel (the "cross-VM" setting).
//!
//! Run with: `cargo run --example audited_transfer`

use std::sync::Arc;
use std::time::Duration;

use csaw::arch::snapshot::{snapshot, SnapshotSpec};
use csaw::core::program::LoadConfig;
use csaw::core::value::Value;
use csaw::curl::apps::{AuditorApp, CurlApp};
use csaw::curl::LinkModel;
use csaw::runtime::runtime::Policy;
use csaw::runtime::{LinkKind, Runtime, RuntimeConfig};

fn main() {
    let spec = SnapshotSpec::default(); // Act (the client), Aud (the log)
    let compiled = csaw::core::compile(snapshot(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&compiled, RuntimeConfig::default());
    // Audit records cross a real TCP socket: integrity via separation.
    rt.set_link("Act", "Aud", LinkKind::Tcp);

    let act = CurlApp::new(LinkModel::gigabit_scaled());
    let jobs = Arc::clone(&act.jobs);
    rt.bind_app("Act", Box::new(act));
    let aud = AuditorApp::new();
    let log = Arc::clone(&aud.log);
    rt.bind_app("Aud", Box::new(aud));
    rt.set_policy("Act", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(5))]).unwrap();

    // Three downloads; each invocation of Act's junction performs the
    // transfer (H1) and pushes the captured state to the auditor.
    for (url, mb) in [
        ("http://files.example/tool.tar.gz", 2u64),
        ("http://files.example/dataset.bin", 24),
        ("http://files.example/notes.txt", 1),
    ] {
        jobs.lock().push((url.to_string(), mb * 1024 * 1024));
        rt.invoke("Act", "junction").unwrap();
    }

    println!("audit log (remote, integrity-preserving):");
    for record in log.lock().iter() {
        println!(
            "  inv {} | {:<36} | {:>9} bytes | checksum {:#018x}",
            record.invocation, record.url, record.done, record.checksum
        );
    }
    assert_eq!(log.lock().len(), 3);
    rt.shutdown();
}
