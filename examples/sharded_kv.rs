//! Sharded key-value store (§5.2 / Fig. 5, the Redis scaling scenario):
//! a front-end routes commands to four back-end stores by djb2 key hash,
//! entirely through the C-Saw architecture.
//!
//! Run with: `cargo run --example sharded_kv`

use std::sync::Arc;
use std::time::Duration;

use csaw::arch::sharding::{sharding, ShardingSpec};
use csaw::core::program::LoadConfig;
use csaw::core::value::Value;
use csaw::redis::apps::{ServerApp, ShardFrontApp, ShardMode};
use csaw::redis::{Command, Reply};
use csaw::runtime::runtime::Policy;
use csaw::runtime::{Runtime, RuntimeConfig};

fn main() {
    let spec = ShardingSpec::default(); // 4 back-ends, Choose/Handle hooks
    let compiled = csaw::core::compile(sharding(&spec), &LoadConfig::new()).unwrap();
    let rt = Runtime::new(&compiled, RuntimeConfig::default());

    let front = ShardFrontApp::new(ShardMode::ByKey, 4);
    let requests = Arc::clone(&front.requests);
    let replies = Arc::clone(&front.replies);
    rt.bind_app("Fnt", Box::new(front));
    let mut stores = Vec::new();
    for i in 1..=4 {
        let app = ServerApp::new();
        stores.push(Arc::clone(&app.store));
        rt.bind_app(&format!("Bck{i}"), Box::new(app));
    }
    // Request-driven front-end: the driver invokes it per command.
    rt.set_policy("Fnt", "junction", Policy::OnDemand);
    rt.run_main(vec![Value::Duration(Duration::from_secs(2))]).unwrap();

    // Write 16 keys and read them back, all through the architecture.
    for i in 0..16 {
        requests
            .lock()
            .push_back(Command::Set(format!("user:{i}"), format!("profile-{i}").into_bytes()));
        rt.invoke("Fnt", "junction").unwrap();
    }
    for i in 0..16 {
        requests.lock().push_back(Command::Get(format!("user:{i}")));
        rt.invoke("Fnt", "junction").unwrap();
    }

    // Show the partition the djb2 hash produced.
    println!("shard contents:");
    for (i, store) in stores.iter().enumerate() {
        let s = store.lock();
        println!("  Bck{}: {} keys ({} bytes)", i + 1, s.len(), s.used_bytes());
    }
    let replies: Vec<Reply> = replies.lock().drain(..).collect();
    let gets = &replies[16..];
    println!(
        "all {} GETs answered correctly: {}",
        gets.len(),
        gets.iter()
            .enumerate()
            .all(|(i, r)| *r == Reply::Bulk(format!("profile-{i}").into_bytes()))
    );
    rt.shutdown();
}
